// Command sweep explores the shared-I-cache design space for a set of
// benchmarks and emits one CSV row per (benchmark, design point):
// normalised execution time, worker MPKI, access ratio, bus wait, and
// the area/energy ratios from the power model. The output is meant for
// plotting or spreadsheet analysis; examples/designspace is the
// human-readable variant.
//
// The whole sweep is declared as one batch plan and fanned out across
// -par goroutines (default: all cores); rows stream to stdout as their
// design points complete, and Ctrl-C aborts the remaining points
// cleanly.
//
// With -store DIR, results persist in an on-disk run store: a repeated
// sweep re-simulates nothing, and several processes (or hosts sharing
// a filesystem) can split one sweep with -shard:
//
//	sweep -store /tmp/rs -shard 1/4 &   # each shard simulates its
//	...                                 # quarter of the design space
//	sweep -store /tmp/rs -shard 4/4 &
//	wait
//	sweep -store /tmp/rs -merge > sweep.csv
//
// -merge renders the CSV purely from the store (zero simulations) and
// fails if any shard has not finished, so the merged output is
// byte-identical to an unsharded run. -storeop index lists the store's
// entries; -storeop gc sweeps corrupt or stale ones.
//
// Usage:
//
//	sweep -bench UA,FT -cpc 2,4,8 -size 16,32 -lb 4 -buses 1,2 > sweep.csv
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"sharedicache/internal/core"
	"sharedicache/internal/experiments"
	"sharedicache/internal/power"
	"sharedicache/internal/runstore"
	"sharedicache/internal/synth"
)

func main() {
	var (
		bench    = flag.String("bench", "UA,FT,LULESH", "comma-separated benchmarks")
		cpcs     = flag.String("cpc", "2,4,8", "sharing degrees to sweep")
		sizes    = flag.String("size", "16,32", "shared I-cache sizes in KB")
		lbs      = flag.String("lb", "4", "line-buffer counts")
		buses    = flag.String("buses", "1,2", "bus counts")
		n        = flag.Uint64("n", 80_000, "master instructions per run")
		workers  = flag.Int("workers", 8, "worker core count")
		seed     = flag.Uint64("seed", 1, "synthesis seed")
		cold     = flag.Bool("cold", false, "cold caches instead of steady state")
		par      = flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		storeDir = flag.String("store", "", "persistent run-store directory (second cache tier)")
		shardStr = flag.String("shard", "", "simulate only shard i/N of the design space into -store; no CSV")
		merge    = flag.Bool("merge", false, "render the CSV from -store without simulating")
		storeop  = flag.String("storeop", "", "run-store maintenance: 'index' or 'gc', then exit")
	)
	flag.Parse()

	benches := strings.Split(*bench, ",")
	for _, b := range benches {
		if _, ok := synth.ProfileByName(b); !ok {
			fatal(fmt.Errorf("unknown benchmark %q", b))
		}
	}
	opts := experiments.DefaultOptions()
	opts.Workers = *workers
	opts.Instructions = *n
	opts.Seed = *seed
	opts.Prewarm = !*cold
	opts.Benchmarks = benches
	opts.Parallelism = *par
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		fatal(err)
	}

	var store *runstore.Store
	if *storeDir != "" {
		if store, err = runstore.Open(*storeDir); err != nil {
			fatal(err)
		}
		runner.SetStore(store)
	}
	if *storeop != "" {
		if store == nil {
			fatal(errors.New("-storeop requires -store"))
		}
		storeMaint(store, *storeop)
		return
	}
	if *shardStr != "" && *merge {
		fatal(errors.New("-shard and -merge are mutually exclusive"))
	}

	// Declare the full design space up front: per benchmark one private
	// baseline plus every valid shared point, in CSV emission order.
	type rowMeta struct {
		bench             string
		cpc, kb, lb, bus  int
		baseIdx, pointIdx int
	}
	baseCfg := core.DefaultConfig()
	baseCfg.Workers = *workers
	plan := runner.Plan()
	baseIdx := map[string]int{}
	var rows []rowMeta
	for _, b := range benches {
		baseIdx[b] = plan.Add(b, baseCfg)
		for _, cpc := range ints(t(*cpcs)) {
			if *workers%cpc != 0 || cpc < 2 {
				continue
			}
			for _, kb := range ints(t(*sizes)) {
				for _, lb := range ints(t(*lbs)) {
					for _, bus := range ints(t(*buses)) {
						cfg := core.DefaultConfig()
						cfg.Workers = *workers
						cfg.Organization = core.OrgWorkerShared
						cfg.CPC = cpc
						cfg.ICache.SizeBytes = kb << 10
						cfg.LineBuffers = lb
						cfg.Buses = bus
						if err := cfg.Validate(); err != nil {
							continue
						}
						rows = append(rows, rowMeta{
							bench: b, cpc: cpc, kb: kb, lb: lb, bus: bus,
							baseIdx: baseIdx[b], pointIdx: plan.Add(b, cfg),
						})
					}
				}
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Shard mode: simulate this shard's slice of the plan into the
	// shared store and exit — -merge renders the CSV once all shards
	// are done.
	if *shardStr != "" {
		if store == nil {
			fatal(errors.New("-shard requires -store (shards share work through it)"))
		}
		sh, err := experiments.ParseShard(*shardStr)
		if err != nil {
			fatal(err)
		}
		sub, err := plan.Shard(sh)
		if err != nil {
			fatal(err)
		}
		if _, err := sub.RunAll(ctx); err != nil {
			fatal(err)
		}
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "sweep: shard %s: %d of %d points, %d simulated, %d store hits\n",
			sh, sub.Len(), plan.Len(), runner.Simulations(), st.Hits)
		return
	}

	tech := power.Default45nm()
	results := make([]*core.Result, plan.Len())
	w := csv.NewWriter(os.Stdout)
	write := func(record []string) {
		if err := w.Write(record); err != nil {
			fatal(err)
		}
	}
	write([]string{"benchmark", "cpc", "size_kb", "line_buffers", "buses",
		"time_ratio", "worker_mpki", "access_ratio", "bus_avg_wait",
		"area_ratio", "energy_ratio"})

	// emitRow renders one design point against its per-benchmark
	// baseline, computing the baseline power report on first use.
	baseReps := map[string]power.Report{}
	emitRow := func(m rowMeta) {
		base, res := results[m.baseIdx], results[m.pointIdx]
		rep, err := tech.Evaluate(clusterFor(res.Config), activityFor(res))
		if err != nil {
			fatal(err)
		}
		baseRep, ok := baseReps[m.bench]
		if !ok {
			if baseRep, err = tech.Evaluate(clusterFor(baseCfg), activityFor(base)); err != nil {
				fatal(err)
			}
			baseReps[m.bench] = baseRep
		}
		_, er, ar := rep.Relative(baseRep)
		write([]string{
			m.bench,
			strconv.Itoa(m.cpc), strconv.Itoa(m.kb),
			strconv.Itoa(m.lb), strconv.Itoa(m.bus),
			f(float64(res.Cycles) / float64(base.Cycles)),
			f(res.WorkerMPKI()),
			f(res.WorkerAccessRatio()),
			f(res.Bus.AvgWait()),
			f(ar), f(er),
		})
	}
	flush := func() {
		w.Flush()
		// A full disk or closed pipe must not truncate the CSV
		// silently: surface the writer's sticky error and exit non-zero.
		if err := w.Error(); err != nil {
			fatal(fmt.Errorf("write CSV: %w", err))
		}
	}

	if *merge {
		// Merge: resolve every point from the store, simulating nothing.
		// With identical flags the row loop below is the one the
		// unsharded sweep runs, so the merged CSV is byte-identical.
		if store == nil {
			fatal(errors.New("-merge requires -store"))
		}
		for i, pt := range plan.Points() {
			res, ok := runner.Lookup(pt)
			if !ok {
				fatal(fmt.Errorf("store %s is missing %s on %s/cpc=%d (run the remaining shards first)",
					store.Dir(), pt.Bench, pt.Cfg.Organization, pt.Cfg.CPC))
			}
			results[i] = res
		}
		for _, m := range rows {
			emitRow(m)
		}
		flush()
		fmt.Fprintf(os.Stderr, "sweep: merge: %d rows from %d stored points, 0 simulated\n",
			len(rows), plan.Len())
		return
	}

	// Normal run: stream rows as their points complete. Plan order puts
	// each benchmark's baseline before its design points, and rows are
	// ordered by pointIdx, so a row is emittable as soon as its
	// pointIdx has streamed past.
	ch, err := plan.RunAllStream(ctx)
	if err != nil {
		fatal(err)
	}
	next := 0
	for pr := range ch {
		if pr.Err != nil {
			flush()
			fatal(pr.Err)
		}
		results[pr.Index] = pr.Result
		for next < len(rows) && rows[next].pointIdx <= pr.Index {
			emitRow(rows[next])
			next++
		}
		flush()
	}
	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "sweep: %d simulated, %d store hits, %d store writes\n",
			runner.Simulations(), st.Hits, st.Writes)
	}
}

// storeMaint runs the -storeop maintenance path.
func storeMaint(store *runstore.Store, op string) {
	switch op {
	case "index":
		entries, err := store.Index()
		if err != nil {
			fatal(err)
		}
		for _, e := range entries {
			prewarm := "cold"
			if e.Key.Prewarm {
				prewarm = "warm"
			}
			fmt.Printf("%s  %-10s %-13s cpc=%d %2dKB lb=%d bus=%d %s n=%d seed=%d  %dB\n",
				e.Hash[:16], e.Key.Bench, e.Key.Config.Organization, e.Key.Config.CPC,
				e.Key.Config.ICache.SizeBytes>>10, e.Key.Config.LineBuffers,
				e.Key.Config.Buses, prewarm,
				e.Key.Campaign.Instructions, e.Key.Campaign.Seed, e.Bytes)
		}
		fmt.Fprintf(os.Stderr, "sweep: %d entries in %s\n", len(entries), store.Dir())
	case "gc":
		removed, err := store.GC()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: gc removed %d files from %s\n", removed, store.Dir())
	default:
		fatal(fmt.Errorf("unknown -storeop %q (index, gc)", op))
	}
}

// clusterFor maps a simulator config to the power model's cluster.
func clusterFor(cfg core.Config) power.Cluster {
	cl := power.Cluster{
		Workers:            cfg.Workers,
		Cache:              cfg.ICache,
		LineBuffersPerCore: cfg.LineBuffers,
	}
	if cfg.Organization == core.OrgWorkerShared {
		cl.Caches = cfg.Workers / cfg.CPC
		cl.BusesPerCache = cfg.Buses
		cl.BusWidthBytes = cfg.BusWidthBytes
		cl.SharedCacheOverhead = 0.25
		cl.Cache.Banks = cfg.Buses
	} else {
		cl.Caches = cfg.Workers
	}
	return cl
}

// activityFor extracts the energy-model counters from a result.
func activityFor(res *core.Result) power.Activity {
	var lineNeeds, cacheFetches uint64
	for _, c := range res.Cores[1:] {
		lineNeeds += c.FE.LineNeeds
		cacheFetches += c.FE.CacheFetches
	}
	return power.Activity{
		Cycles:          res.Cycles,
		Instructions:    res.WorkerInstructions(),
		CacheAccesses:   res.WorkerICache.Accesses,
		BusTransactions: res.Bus.Granted,
		LineBufferHits:  lineNeeds - cacheFetches,
	}
}

func t(s string) []string { return strings.Split(s, ",") }

func ints(parts []string) []int {
	var out []int
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", p))
		}
		out = append(out, v)
	}
	return out
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "sweep: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
