// Command tracegen synthesises per-thread trace files for one
// benchmark and writes them in the library's binary trace format (one
// file per thread, master first), mirroring the paper's step 1: the
// PinTool producing a trace file per thread.
//
// Usage:
//
//	tracegen -bench FT -n 1000000 -workers 8 -out /tmp/traces
//
// The produced files round-trip through trace.Reader and can be fed to
// the simulator via cmd/acmpsim-style drivers or the library API.
//
// With -arrivals MODE the command instead synthesises a campaign
// arrival trace: the design space the axis flags describe is expanded
// in sweep order and scheduled onto the mode's RPS curve, and the
// resulting (arrival offset, design point, backend) rows are written
// as CSV to stdout for `sweep -replay` to submit open-loop against a
// serving campaignd coordinator:
//
//	tracegen -arrivals burst -bench UA,FT -start-rps 50 -burst-factor 4 > trace.csv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"sharedicache/internal/experiments"
	"sharedicache/internal/sweep"
	"sharedicache/internal/synth"
	"sharedicache/internal/trace"
	"sharedicache/internal/tracing"
)

func main() {
	var (
		bench    = flag.String("bench", "FT", "benchmark name")
		n        = flag.Uint64("n", 1_000_000, "master-thread instruction budget")
		workers  = flag.Int("workers", 8, "worker core count")
		seed     = flag.Uint64("seed", 1, "synthesis seed")
		out      = flag.String("out", ".", "output directory")
		verify   = flag.Bool("verify", true, "read files back and compare record counts")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON span timeline to this file at exit (load in Perfetto)")

		// Arrival-trace mode: the design-space axes mirror cmd/sweep's
		// flags so a replayed campaign expands to the same rows a local
		// sweep would, and the load-shape flags mirror the invitro
		// generator's knobs.
		arrivals    = flag.String("arrivals", "", "synthesise a campaign arrival trace instead of instruction traces: steady, sweep or burst (CSV on stdout)")
		cpcs        = flag.String("cpc", "2,4,8", "with -arrivals: sharing degrees to sweep")
		sizes       = flag.String("size", "16,32", "with -arrivals: shared I-cache sizes in KB")
		lbs         = flag.String("lb", "4", "with -arrivals: line-buffer counts")
		buses       = flag.String("buses", "1,2", "with -arrivals: bus counts")
		backend     = flag.String("backend", "", "with -arrivals: simulation backend stamped on every row (empty keeps the service default)")
		startRPS    = flag.Float64("start-rps", 10, "with -arrivals: slot-0 request rate")
		targetRPS   = flag.Float64("target-rps", 100, "with -arrivals sweep: rate ceiling")
		stepRPS     = flag.Float64("step-rps", 10, "with -arrivals sweep: per-slot rate increment")
		burstFactor = flag.Float64("burst-factor", 4, "with -arrivals burst: burst-slot amplification")
		burstEvery  = flag.Int("burst-every", 3, "with -arrivals burst: every n-th slot bursts")
		slot        = flag.Duration("slot", time.Second, "with -arrivals: slot duration")
	)
	flag.Parse()

	if *arrivals != "" {
		if err := runArrivals(arrivalConfig{
			mode: *arrivals, bench: *bench, workers: *workers,
			cpcs: *cpcs, sizes: *sizes, lbs: *lbs, buses: *buses,
			backend: *backend, n: *n, seed: *seed,
			startRPS: *startRPS, targetRPS: *targetRPS, stepRPS: *stepRPS,
			burstFactor: *burstFactor, burstEvery: *burstEvery, slot: *slot,
		}); err != nil {
			fatal(err)
		}
		return
	}

	p, ok := synth.ProfileByName(*bench)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *bench))
	}
	w, err := synth.New(p, synth.Config{Workers: *workers, MasterInstructions: *n, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// -trace: a root span over the whole generation with one child span
	// per thread file, written as Chrome trace-event JSON at exit.
	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.Config{Process: "tracegen"})
		defer func() {
			n, err := tracing.WriteFile(*traceOut, tracer)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen: trace:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "tracegen: trace: %d spans written to %s\n", n, *traceOut)
		}()
	}
	ctx, root := tracer.Start(context.Background(), "generate",
		tracing.A("bench", *bench),
		tracing.AInt("threads", w.NumThreads()))
	defer root.End()

	for t := 0; t < w.NumThreads(); t++ {
		path := filepath.Join(*out, fmt.Sprintf("%s.t%02d.trace", *bench, t))
		_, span := tracer.Start(ctx, "thread", tracing.AInt("thread", t))
		count, instr, err := writeThread(path, w.Source(t))
		if err != nil {
			span.End()
			fatal(err)
		}
		if *verify {
			got, err := countRecords(path)
			if err != nil {
				span.End()
				fatal(fmt.Errorf("verify %s: %w", path, err))
			}
			if got != count {
				span.End()
				fatal(fmt.Errorf("verify %s: wrote %d records, read back %d", path, count, got))
			}
		}
		span.SetAttr("records", strconv.FormatUint(count, 10))
		span.SetAttr("instructions", strconv.FormatUint(instr, 10))
		span.End()
		fmt.Printf("%s: %d records, %d instructions\n", path, count, instr)
	}
}

// arrivalConfig carries the -arrivals flag values into runArrivals.
type arrivalConfig struct {
	mode, bench                  string
	workers                      int
	cpcs, sizes, lbs, buses      string
	backend                      string
	n, seed                      uint64
	startRPS, targetRPS, stepRPS float64
	burstFactor                  float64
	burstEvery                   int
	slot                         time.Duration
}

// runArrivals expands the design space exactly as cmd/sweep does
// (sweep.Space.Build over the same flag semantics), schedules the
// resulting rows onto the requested RPS curve and writes the arrival
// trace CSV to stdout. Rows carry the raw -backend flag value — not
// the resolved backend name — so a replayed campaign adds the CSV
// backend column under exactly the rule `sweep -backend` follows.
func runArrivals(cfg arrivalConfig) error {
	mode, err := synth.ParseArrivalMode(cfg.mode)
	if err != nil {
		return err
	}
	sf := sweep.Flags{
		Bench: cfg.bench, CPCs: cfg.cpcs, Sizes: cfg.sizes,
		LineBuffers: cfg.lbs, Buses: cfg.buses,
		N: cfg.n, Workers: cfg.workers, Seed: cfg.seed,
		Backend: cfg.backend,
	}
	opts, err := sf.Options()
	if err != nil {
		return err
	}
	space, err := sf.Space()
	if err != nil {
		return err
	}
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		return err
	}
	_, rows := space.Build(runner)
	if len(rows) == 0 {
		return fmt.Errorf("design space expands to zero valid rows")
	}
	points := make([]synth.ArrivalPoint, len(rows))
	for i, r := range rows {
		points[i] = synth.ArrivalPoint{
			Bench: r.Bench, CPC: r.CPC, KB: r.KB, LB: r.LB, Bus: r.Bus,
			Backend: cfg.backend,
		}
	}
	spec := synth.ArrivalSpec{
		Mode: mode, StartRPS: cfg.startRPS, TargetRPS: cfg.targetRPS,
		StepRPS: cfg.stepRPS, BurstFactor: cfg.burstFactor,
		BurstEvery: cfg.burstEvery, Slot: cfg.slot,
	}
	arr, err := synth.SynthesizeArrivals(spec, points)
	if err != nil {
		return err
	}
	if err := synth.WriteArrivals(os.Stdout, arr); err != nil {
		return err
	}
	last := arr[len(arr)-1].Offset
	fmt.Fprintf(os.Stderr, "tracegen: arrivals: %d rows over %s (%s mode)\n",
		len(arr), last.Round(time.Millisecond), mode)
	return nil
}

func writeThread(path string, src trace.Source) (records, instructions uint64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	tw := trace.NewWriter(bw)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(rec); err != nil {
			return 0, 0, err
		}
		records++
		if rec.Kind == trace.KindFetchBlock {
			instructions += uint64(rec.NumInstr)
		}
	}
	if err := tw.Flush(); err != nil {
		return 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, err
	}
	return records, instructions, f.Close()
}

func countRecords(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := trace.NewReader(bufio.NewReaderSize(f, 1<<20))
	var n uint64
	for {
		_, ok := r.Next()
		if !ok {
			break
		}
		n++
	}
	return n, r.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
