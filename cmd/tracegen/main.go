// Command tracegen synthesises per-thread trace files for one
// benchmark and writes them in the library's binary trace format (one
// file per thread, master first), mirroring the paper's step 1: the
// PinTool producing a trace file per thread.
//
// Usage:
//
//	tracegen -bench FT -n 1000000 -workers 8 -out /tmp/traces
//
// The produced files round-trip through trace.Reader and can be fed to
// the simulator via cmd/acmpsim-style drivers or the library API.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"sharedicache/internal/synth"
	"sharedicache/internal/trace"
	"sharedicache/internal/tracing"
)

func main() {
	var (
		bench    = flag.String("bench", "FT", "benchmark name")
		n        = flag.Uint64("n", 1_000_000, "master-thread instruction budget")
		workers  = flag.Int("workers", 8, "worker core count")
		seed     = flag.Uint64("seed", 1, "synthesis seed")
		out      = flag.String("out", ".", "output directory")
		verify   = flag.Bool("verify", true, "read files back and compare record counts")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON span timeline to this file at exit (load in Perfetto)")
	)
	flag.Parse()

	p, ok := synth.ProfileByName(*bench)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q", *bench))
	}
	w, err := synth.New(p, synth.Config{Workers: *workers, MasterInstructions: *n, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// -trace: a root span over the whole generation with one child span
	// per thread file, written as Chrome trace-event JSON at exit.
	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New(tracing.Config{Process: "tracegen"})
		defer func() {
			n, err := tracing.WriteFile(*traceOut, tracer)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen: trace:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "tracegen: trace: %d spans written to %s\n", n, *traceOut)
		}()
	}
	ctx, root := tracer.Start(context.Background(), "generate",
		tracing.A("bench", *bench),
		tracing.AInt("threads", w.NumThreads()))
	defer root.End()

	for t := 0; t < w.NumThreads(); t++ {
		path := filepath.Join(*out, fmt.Sprintf("%s.t%02d.trace", *bench, t))
		_, span := tracer.Start(ctx, "thread", tracing.AInt("thread", t))
		count, instr, err := writeThread(path, w.Source(t))
		if err != nil {
			span.End()
			fatal(err)
		}
		if *verify {
			got, err := countRecords(path)
			if err != nil {
				span.End()
				fatal(fmt.Errorf("verify %s: %w", path, err))
			}
			if got != count {
				span.End()
				fatal(fmt.Errorf("verify %s: wrote %d records, read back %d", path, count, got))
			}
		}
		span.SetAttr("records", strconv.FormatUint(count, 10))
		span.SetAttr("instructions", strconv.FormatUint(instr, 10))
		span.End()
		fmt.Printf("%s: %d records, %d instructions\n", path, count, instr)
	}
}

func writeThread(path string, src trace.Source) (records, instructions uint64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	tw := trace.NewWriter(bw)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(rec); err != nil {
			return 0, 0, err
		}
		records++
		if rec.Kind == trace.KindFetchBlock {
			instructions += uint64(rec.NumInstr)
		}
	}
	if err := tw.Flush(); err != nil {
		return 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, err
	}
	return records, instructions, f.Close()
}

func countRecords(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := trace.NewReader(bufio.NewReaderSize(f, 1<<20))
	var n uint64
	for {
		_, ok := r.Next()
		if !ok {
			break
		}
		n++
	}
	return n, r.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
