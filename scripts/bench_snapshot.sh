#!/bin/sh
# bench_snapshot.sh [OUT.json] — run the repo's two headline benchmarks
# (BenchmarkSweepBackends, BenchmarkCampaignParallel) once each and
# snapshot the results as JSON, so perf regressions are diffable across
# PRs instead of anecdotal. The committed snapshots live at the repo
# root (BENCH_<pr>.json).
#
# The numbers are machine-dependent; a snapshot is comparable to the
# machine and ratio within it (detailed vs analytical, par=1 vs par=4),
# not to other hosts.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_8.json}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^(BenchmarkSweepBackends|BenchmarkCampaignParallel)$' \
	-benchtime 1x -timeout 30m . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	printf '  "benchmarks": [\n'
	# Each result line is: Name-<procs> N <value> <unit> [<value> <unit>]...
	awk '/^Benchmark/ {
		line = sep; sep = ",\n"
		line = line sprintf("    {\"name\":\"%s\",\"iterations\":%s", $1, $2)
		for (i = 3; i + 1 <= NF; i += 2)
			line = line sprintf(",\"%s\":%s", $(i+1), $i)
		printf "%s}", line
	} END { print "" }' "$raw"
	printf '  ]\n}\n'
} > "$out"
echo "bench snapshot written to $out" >&2
