#!/bin/sh
# bench_snapshot.sh [OUT.json] — run the repo's two headline benchmarks
# (BenchmarkSweepBackends, BenchmarkCampaignParallel) once each and
# snapshot the results as JSON, so perf regressions are diffable across
# PRs instead of anecdotal. The committed snapshots live at the repo
# root (BENCH_<pr>.json).
#
# The snapshot also stamps "speedup-vs-BENCH_8": the detailed backend's
# sim-cycles/sec over the rate recorded in BENCH_8.json (the last
# naive-loop snapshot), i.e. what the event-driven fast path buys on
# this host. The field is null when either rate is unavailable. Point
# BENCH_BASELINE at a different snapshot to rebase the comparison.
#
# The numbers are machine-dependent; a snapshot is comparable to the
# machine and ratio within it (detailed vs analytical, par=1 vs par=4,
# speedup vs a baseline taken on the same host), not to other hosts.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_9.json}"
baseline="${BENCH_BASELINE:-BENCH_8.json}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^(BenchmarkSweepBackends|BenchmarkCampaignParallel)$' \
	-benchtime 1x -timeout 30m . | tee "$raw" >&2

# The detailed backend's rate from this run and from the baseline
# snapshot, for the speedup stamp.
rate=$(awk '$1 ~ /^BenchmarkSweepBackends\/backend=detailed/ {
	for (i = 3; i + 1 <= NF; i += 2) if ($(i+1) == "sim-cycles/sec") print $i
}' "$raw")
base=$(awk -F'"sim-cycles/sec":' '/backend=detailed/ && NF > 1 {
	split($2, a, /[,}]/); print a[1]
}' "$baseline" 2>/dev/null || true)

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	if [ -n "$rate" ] && [ -n "$base" ]; then
		printf '  "speedup-vs-BENCH_8": %s,\n' \
			"$(awk -v r="$rate" -v b="$base" 'BEGIN { printf "%.2f", r / b }')"
	else
		printf '  "speedup-vs-BENCH_8": null,\n'
	fi
	printf '  "benchmarks": [\n'
	# Each result line is: Name-<procs> N <value> <unit> [<value> <unit>]...
	awk '/^Benchmark/ {
		line = sep; sep = ",\n"
		line = line sprintf("    {\"name\":\"%s\",\"iterations\":%s", $1, $2)
		for (i = 3; i + 1 <= NF; i += 2)
			line = line sprintf(",\"%s\":%s", $(i+1), $i)
		printf "%s}", line
	} END { print "" }' "$raw"
	printf '  ]\n}\n'
} > "$out"
echo "bench snapshot written to $out" >&2
