// Ablation benches for the design choices DESIGN.md calls out and the
// paper's §VII future-work items: the I-bus arbitration policy (the
// shared bus's "fetch policy") and a branch predictor shared among the
// SPMD worker cores. Run with:
//
//	go test -bench=Ablation -benchtime=1x
package sharedicache

import (
	"testing"
)

// ablationWorkload synthesises the paper's worst congestion case (UA)
// at bench scale.
func ablationWorkload(b *testing.B) *Workload {
	b.Helper()
	p, ok := ProfileByName("UA")
	if !ok {
		b.Fatal("no UA profile")
	}
	w, err := NewWorkload(p, WorkloadConfig{Workers: 8, MasterInstructions: 80_000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// simulateWarm runs one prewarmed simulation.
func simulateWarm(b *testing.B, w *Workload, cfg Config) *Result {
	b.Helper()
	sim, err := NewSimulator(cfg, w.Sources())
	if err != nil {
		b.Fatal(err)
	}
	ic := make([][]uint64, cfg.Workers+1)
	l2 := make([][]uint64, cfg.Workers+1)
	for i := 0; i <= cfg.Workers; i++ {
		ic[i] = w.WarmLines(i, cfg.ICache.LineBytes)
		l2[i] = w.L2WarmLines(i, cfg.Mem.L2.LineBytes)
	}
	sim.Prewarm(ic, l2)
	res, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblation_Arbitration compares bus arbitration policies on
// the naive single-bus cpc=8 design, where contention is maximal. The
// metrics are per-policy execution time normalised to round-robin and
// the mean bus wait.
func BenchmarkAblation_Arbitration(b *testing.B) {
	w := ablationWorkload(b)
	var rr, fixed, oldest float64
	var rrWait, fixedWait, oldestWait float64
	for i := 0; i < b.N; i++ {
		cfg := SharedConfig()
		cfg.Buses = 1 // maximise contention
		cfg.Arbitration = RoundRobin
		base := simulateWarm(b, w, cfg)
		rr = 1.0
		rrWait = base.Bus.AvgWait()

		cfg.Arbitration = FixedPriority
		fp := simulateWarm(b, w, cfg)
		fixed = float64(fp.Cycles) / float64(base.Cycles)
		fixedWait = fp.Bus.AvgWait()

		cfg.Arbitration = OldestFirst
		of := simulateWarm(b, w, cfg)
		oldest = float64(of.Cycles) / float64(base.Cycles)
		oldestWait = of.Bus.AvgWait()
	}
	b.ReportMetric(rr, "rr-time")
	b.ReportMetric(fixed, "fixedprio-time")
	b.ReportMetric(oldest, "oldest-time")
	b.ReportMetric(rrWait, "rr-wait-cyc")
	b.ReportMetric(fixedWait, "fixedprio-wait-cyc")
	b.ReportMetric(oldestWait, "oldest-wait-cyc")
}

// BenchmarkAblation_SharedPredictor measures the §VII future-work
// item: one fetch predictor shared by all workers. SPMD threads
// execute the same branches, so they train each other (constructive
// aliasing); the metric is worker mispredicts per kilo-instruction
// with private vs shared predictors on the paper's preferred design.
func BenchmarkAblation_SharedPredictor(b *testing.B) {
	w := ablationWorkload(b)
	var privMPKI, sharedMPKI, timeRatio float64
	for i := 0; i < b.N; i++ {
		cfg := SharedConfig()
		base := simulateWarm(b, w, cfg)

		cfg.SharedWorkerPredictor = true
		sp := simulateWarm(b, w, cfg)

		workerMispredictMPKI := func(r *Result) float64 {
			var mis, instr uint64
			for _, c := range r.Cores[1:] {
				mis += c.FE.Mispredicts
				instr += c.Instructions
			}
			if instr == 0 {
				return 0
			}
			return float64(mis) / float64(instr) * 1000
		}
		privMPKI = workerMispredictMPKI(base)
		sharedMPKI = workerMispredictMPKI(sp)
		timeRatio = float64(sp.Cycles) / float64(base.Cycles)
	}
	b.ReportMetric(privMPKI, "private-mispredict-MPKI")
	b.ReportMetric(sharedMPKI, "shared-mispredict-MPKI")
	b.ReportMetric(timeRatio, "shared-pred-time")
}

// BenchmarkAblation_LineBufferCount sweeps line buffers beyond the
// paper's 2/4/8 (1..16) on the single-bus shared design, locating the
// knee the paper's Fig 9/10 discussion implies.
func BenchmarkAblation_LineBufferCount(b *testing.B) {
	w := ablationWorkload(b)
	counts := []int{1, 2, 4, 8, 16}
	times := make([]float64, len(counts))
	for i := 0; i < b.N; i++ {
		var base uint64
		for j, lb := range counts {
			cfg := SharedConfig()
			cfg.Buses = 1
			cfg.LineBuffers = lb
			res := simulateWarm(b, w, cfg)
			if j == 0 {
				base = res.Cycles
			}
			times[j] = float64(res.Cycles) / float64(base)
		}
	}
	b.ReportMetric(times[1], "2LB-vs-1LB")
	b.ReportMetric(times[2], "4LB-vs-1LB")
	b.ReportMetric(times[3], "8LB-vs-1LB")
	b.ReportMetric(times[4], "16LB-vs-1LB")
}

// BenchmarkAblation_MSHRMerging quantifies the mutual-prefetch
// mechanism of §VI-C on a cold shared cache: the fraction of shared
// I-cache requests satisfied by in-flight fills from sibling cores.
func BenchmarkAblation_MSHRMerging(b *testing.B) {
	w := ablationWorkload(b)
	var mergeFrac float64
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(SharedConfig(), w.Sources())
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run() // cold: merging is a cold/capacity-miss effect
		if err != nil {
			b.Fatal(err)
		}
		if res.Bus.Granted > 0 {
			mergeFrac = float64(res.MergedFills) / float64(res.Bus.Granted)
		}
	}
	b.ReportMetric(100*mergeFrac, "%requests-merged")
}
