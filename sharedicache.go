// Package sharedicache reproduces "Sharing the Instruction Cache Among
// Lean Cores on an Asymmetric CMP for HPC Applications" (Milic, Rico,
// Carpenter, Ramirez; ISPASS 2017): a trace-driven, cycle-level
// simulator of an asymmetric chip multiprocessor in which the lean
// worker cores share an L1 instruction cache behind an arbitrated bus,
// plus the workload synthesis, power/area models and experiment
// harness that regenerate every figure of the paper's evaluation.
//
// # Quick start
//
//	p, _ := sharedicache.ProfileByName("FT")
//	w, _ := sharedicache.NewWorkload(p, sharedicache.WorkloadConfig{
//		Workers: 8, MasterInstructions: 200_000, Seed: 1,
//	})
//	sim, _ := sharedicache.NewSimulator(sharedicache.SharedConfig(), w.Sources())
//	res, _ := sim.Run()
//	fmt.Println(res.Cycles, res.WorkerMPKI())
//
// # Layout
//
//   - Simulator / Config / Result wrap the cycle-level ACMP model
//     (internal/core) with its decoupled front-ends, shared I-cache,
//     buses, L2s and DRAM.
//   - Workload / Profile wrap the synthetic HPC trace generator
//     (internal/synth) covering the paper's 24 benchmarks.
//   - Runner / Plan / Experiments wrap the per-figure harness and its
//     parallel campaign engine (internal/experiments): design points
//     are declared up front, deduplicated by a singleflight run cache,
//     and fanned out across ExperimentOptions.Parallelism goroutines
//     with context cancellation. Each point dispatches to a pluggable
//     SimulationBackend — the cycle-level "detailed" simulator or the
//     "analytical" triage estimator — selected per campaign or per
//     point.
//   - RunStore (internal/runstore) persists results on disk as a
//     second cache tier keyed by content hash; Shard partitions a
//     CampaignPlan deterministically so sharded processes sharing one
//     store directory split a campaign, and
//     CampaignPlan.RunAllStream streams results in plan order as they
//     complete.
//   - CampaignServer / CampaignWorker / RemoteRunStore
//     (internal/campaignd) distribute a campaign over HTTP: the server
//     owns the plan and the store, workers lease design points under
//     TTL leases (crashed workers' points are stolen by survivors),
//     and merged results stream back in plan order.
//   - DesignSpace / SweepCSV (internal/sweep) expand the swept axes
//     into a plan and render the campaign CSV, and PrepareRefine
//     (internal/refine) runs the automated triage-then-refine
//     pipeline: calibrate the analytical backend against detailed
//     ground truth on a golden slice, triage the full space
//     analytically, and re-plan the frontier a FrontierSelector picks
//     onto the detailed backend (see docs/REFINE.md).
//   - MetricsRegistry (internal/metrics), Tracer (internal/tracing)
//     and SimReportCollector (internal/simreport) are the
//     observability layer: runner cache tiers, store traffic and lease
//     health all register on one registry, served in Prometheus text
//     form at the coordinator's GET /metrics; a Tracer records
//     per-point span timelines — propagated across the campaign's HTTP
//     planes so worker spans parent under coordinator lease spans —
//     exported as Chrome trace-event JSON for Perfetto; and a
//     SimReportCollector captures per-point microarchitectural
//     telemetry (CPI stall stacks, cache/bus stats, host cost),
//     persisted beside results in the RunStore and aggregated
//     campaign-wide at GET /v1/simstatsz (see docs/OBSERVABILITY.md).
//   - Tech / Cluster wrap the McPAT/CACTI-style area & energy model
//     (internal/power).
//   - CMPDesign wraps the Hill-Marty speedup model (internal/amdahl).
package sharedicache

import (
	"context"
	"io"

	"sharedicache/internal/amdahl"
	"sharedicache/internal/campaignd"
	"sharedicache/internal/core"
	"sharedicache/internal/experiments"
	"sharedicache/internal/interconnect"
	"sharedicache/internal/metrics"
	"sharedicache/internal/power"
	"sharedicache/internal/refine"
	"sharedicache/internal/runstore"
	"sharedicache/internal/simreport"
	"sharedicache/internal/sweep"
	"sharedicache/internal/synth"
	"sharedicache/internal/trace"
	"sharedicache/internal/tracing"
)

// Simulator runs one workload on one ACMP configuration (single use).
type Simulator = core.Simulator

// Config is the simulated ACMP configuration (the paper's Table I).
type Config = core.Config

// Result aggregates one simulation run.
type Result = core.Result

// Organization selects private, worker-shared or all-shared I-caches.
type Organization = core.Organization

// I-cache organisations.
const (
	// OrgPrivate is the baseline: per-core private I-caches (Fig 5a).
	OrgPrivate = core.OrgPrivate
	// OrgWorkerShared shares I-caches among groups of workers (Fig 5b).
	OrgWorkerShared = core.OrgWorkerShared
	// OrgAllShared attaches the master to the shared I-cache (§VI-E).
	OrgAllShared = core.OrgAllShared
)

// DefaultConfig returns the Table I private-I-cache baseline.
func DefaultConfig() Config { return core.DefaultConfig() }

// SharedConfig returns the paper's preferred design point: one 16 KB
// I-cache shared by all 8 workers behind a double bus.
func SharedConfig() Config { return core.SharedConfig() }

// NewSimulator builds a simulator over per-thread trace sources
// (sources[0] is the master thread).
func NewSimulator(cfg Config, sources []TraceSource) (*Simulator, error) {
	return core.New(cfg, sources)
}

// TraceSource streams one thread's trace records.
type TraceSource = trace.Source

// TraceRecord is one trace event (fetch block, sync event or IPC set).
type TraceRecord = trace.Record

// Profile parameterises one synthetic HPC benchmark.
type Profile = synth.Profile

// Workload holds one benchmark's generated code regions and hands out
// per-thread trace sources.
type Workload = synth.Workload

// WorkloadConfig controls trace synthesis.
type WorkloadConfig = synth.Config

// Profiles returns the 24 benchmark profiles in the paper's order.
func Profiles() []Profile { return synth.Profiles() }

// ProfileByName returns the named profile and whether it exists.
func ProfileByName(name string) (Profile, bool) { return synth.ProfileByName(name) }

// ProfileNames returns the benchmark names in plotting order.
func ProfileNames() []string { return synth.ProfileNames() }

// NewWorkload synthesises a workload from a profile.
func NewWorkload(p Profile, cfg WorkloadConfig) (*Workload, error) { return synth.New(p, cfg) }

// Runner executes and caches simulations across experiments: its
// singleflight run cache simulates each distinct design point exactly
// once even under concurrent use.
type Runner = experiments.Runner

// DesignPoint is one (benchmark, configuration) simulation request in
// a campaign plan; its Backend field may override the campaign's
// simulation backend for that point alone.
type DesignPoint = experiments.Point

// SimulationBackend resolves design points to results: the cycle-level
// "detailed" simulator (the default) or the Hill & Marty + cache-model
// "analytical" estimator, selected per campaign via
// ExperimentOptions.Backend or per point via DesignPoint.Backend.
// Entries cached in a RunStore are keyed by backend, so the two can
// never cross-pollute.
type SimulationBackend = experiments.Backend

// RegisterSimulationBackend adds a backend to the registry under its
// selection name (it panics on duplicates).
func RegisterSimulationBackend(name string, f experiments.BackendFactory) {
	experiments.RegisterBackend(name, f)
}

// SimulationBackends lists the registered backend names, sorted.
func SimulationBackends() []string { return experiments.BackendNames() }

// CampaignPlan is an ordered batch of design points; RunAll fans it
// out across ExperimentOptions.Parallelism goroutines and returns
// results in plan order.
type CampaignPlan = experiments.Plan

// ExperimentOptions scales an experiment campaign, including its
// Parallelism (0 = all cores).
type ExperimentOptions = experiments.Options

// Experiment couples a figure id with its runner; Run takes a
// context.Context so campaigns can be aborted cleanly.
type Experiment = experiments.Experiment

// PointResult is one streamed design-point outcome from
// CampaignPlan.RunAllStream, delivered in plan order.
type PointResult = experiments.PointResult

// Shard names partition i of N of a campaign; CampaignPlan.Shard
// selects the sub-plan it owns, deterministically across processes.
type Shard = experiments.Shard

// ParseShard parses the "i/N" command-line shard form.
func ParseShard(s string) (Shard, error) { return experiments.ParseShard(s) }

// RunStore is a persistent, content-addressed on-disk result cache;
// attach one to a Runner with SetStore to make campaigns resumable and
// shardable across processes.
type RunStore = runstore.Store

// ResultStore is the persistent-tier interface Runner.SetStore
// consumes: the on-disk RunStore and the network-backed
// RemoteRunStore both implement it.
type ResultStore = experiments.ResultStore

// RunStoreStats counts store hits, misses, writes and bad entries.
type RunStoreStats = runstore.Stats

// OpenRunStore opens (creating if needed) a run store directory.
func OpenRunStore(dir string) (*RunStore, error) { return runstore.Open(dir) }

// CampaignServer coordinates a distributed campaign: it serves the run
// store over HTTP and leases plan points to remote workers with
// TTL-based work stealing, streaming merged results in plan order.
type CampaignServer = campaignd.Server

// CampaignServerConfig assembles a CampaignServer.
type CampaignServerConfig = campaignd.ServerConfig

// NewCampaignServer builds a coordinator over a plan and its store.
func NewCampaignServer(cfg CampaignServerConfig) (*CampaignServer, error) {
	return campaignd.New(cfg)
}

// RemoteRunStore is a ResultStore backed by a CampaignServer's store
// plane, for campaigns spanning machines without a shared filesystem.
type RemoteRunStore = campaignd.RemoteStore

// OpenRemoteRunStore builds a client for the coordinator at baseURL;
// ctx bounds the lifetime of every request the store makes.
func OpenRemoteRunStore(ctx context.Context, baseURL string) (*RemoteRunStore, error) {
	return campaignd.NewRemoteStore(ctx, baseURL)
}

// CampaignWorker leases design points from a CampaignServer, simulates
// them, and publishes the results back through the store plane.
type CampaignWorker = campaignd.Worker

// MetricsRegistry collects the process's counters, gauges and
// histograms and renders them in Prometheus text exposition form;
// attach one to a Runner with SetMetrics, a CampaignWorker via its
// Metrics field, or a CampaignServer via its config to publish the
// whole campaign's health on one GET /metrics endpoint.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Tracer records bounded in-memory span timelines; attach one to a
// Runner with SetTracer, a CampaignServer via its config, or a
// CampaignWorker via its Tracer field. All methods are no-ops on a nil
// Tracer, so instrumented code needs no branches and tracing stays off
// by default. See docs/OBSERVABILITY.md.
type Tracer = tracing.Tracer

// TracerConfig assembles a Tracer: its process name, buffer capacity
// and optional slog sink for finished spans.
type TracerConfig = tracing.Config

// TraceSpan is one finished span: trace/span/parent IDs, process,
// microsecond start and duration, and free-form attributes.
type TraceSpan = tracing.Span

// NewTracer builds a span recorder with a fresh trace ID.
func NewTracer(cfg TracerConfig) *Tracer { return tracing.New(cfg) }

// WriteChromeTrace renders spans as Chrome trace-event JSON, loadable
// in Perfetto (processes become pids, engine worker slots become tids).
func WriteChromeTrace(w io.Writer, spans []TraceSpan) error {
	return tracing.WriteChromeTrace(w, spans)
}

// SimReport is one design point's microarchitectural telemetry:
// per-core CPI stall stacks, per-level I-cache traffic, bus occupancy,
// DRAM and runtime counters, plus the host-side cost of simulating it.
type SimReport = simreport.Report

// SimReportCollector accumulates SimReports across a campaign; attach
// one to a Runner with SetReporter, a CampaignWorker via its Reports
// field, or a CampaignServer via its config (which then serves the
// aggregate at GET /v1/simstatsz). Nil-safe and off by default, like
// Tracer. See docs/OBSERVABILITY.md.
type SimReportCollector = simreport.Collector

// SimReportSummary is the campaign-wide aggregate: totals, stall
// shares, and per-backend / per-configuration distributions.
type SimReportSummary = simreport.Summary

// NewSimReportCollector builds an empty report collector.
func NewSimReportCollector() *SimReportCollector { return simreport.NewCollector() }

// WriteSimReports writes a collector's reports and their summary as
// indented JSON to path, returning the report count.
func WriteSimReports(path string, c *SimReportCollector) (int, error) {
	return simreport.WriteFile(path, c)
}

// DesignSpace enumerates the swept design-space axes shared by
// cmd/sweep and cmd/campaignd; Build declares it on a Runner as a
// CampaignPlan plus the CSV row metadata.
type DesignSpace = sweep.Space

// SweepRow ties one sweep CSV row to its plan indexes, and — for
// auto-refine campaigns — carries its backend and phase labels.
type SweepRow = sweep.Row

// SweepMetrics are one sweep row's derived values: normalised
// execution time, worker MPKI, access ratio, bus wait, and the power
// model's area/energy ratios.
type SweepMetrics = sweep.Metrics

// SweepCSV renders sweep rows to CSV, batch or streaming, with
// optional backend/phase columns and a metric-adjust hook.
type SweepCSV = sweep.CSV

// NewSweepCSV builds a sweep CSV emitter for the given worker count.
func NewSweepCSV(out io.Writer, workers int) *SweepCSV { return sweep.NewCSV(out, workers) }

// RefineConfig assembles an automated triage-then-refine campaign:
// the full design space, the runner (and optionally the store the
// calibration fit persists in), and the frontier selector.
type RefineConfig = refine.Config

// RefineResult is a prepared auto-refine campaign: the mixed plan
// (analytical triage + detailed frontier), phase-labelled CSV rows,
// and the calibration fit to apply to triage rows.
type RefineResult = refine.Result

// PrepareRefine runs the calibration and analytical-triage phases and
// returns the mixed campaign, ready to execute locally or to serve
// through a CampaignServer. See docs/REFINE.md for the workflow.
func PrepareRefine(ctx context.Context, cfg RefineConfig) (*RefineResult, error) {
	return refine.Prepare(ctx, cfg)
}

// FrontierSelector picks the triage rows worth re-running on the
// detailed backend; TopKSelector, ParetoSelector and BandSelector are
// the built-in rules.
type FrontierSelector = refine.Selector

// FrontierCandidate is one triage row with its calibrated metrics, as
// handed to a FrontierSelector.
type FrontierCandidate = refine.Candidate

// TopKSelector selects the K best rows by one metric.
type TopKSelector = refine.TopK

// ParetoSelector selects the Pareto frontier over time and energy.
type ParetoSelector = refine.Pareto

// BandSelector selects rows whose metric falls inside [Lo, Hi].
type BandSelector = refine.Band

// CalibrationFit is the persisted per-metric correction mapping
// analytical estimates onto detailed ground truth, with its
// invalidation fingerprint.
type CalibrationFit = refine.Calibration

// MetricFit is one metric's least-squares correction (y = A·x + B)
// with its residual error.
type MetricFit = refine.Fit

// DefaultExperimentOptions returns the defaults used by
// cmd/experiments.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// NewRunner builds an experiment runner.
func NewRunner(opts ExperimentOptions) (*Runner, error) { return experiments.NewRunner(opts) }

// Experiments returns every paper experiment in order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one experiment ("fig1".."fig13", "table1").
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// Tech bundles technology coefficients for the area/energy model.
type Tech = power.Tech

// Cluster describes a worker cluster for the area/energy model.
type Cluster = power.Cluster

// Default45nm returns the coefficients calibrated to the paper.
func Default45nm() Tech { return power.Default45nm() }

// CMPDesign is a Hill-Marty CMP design for the Fig 1 model.
type CMPDesign = amdahl.Design

// PaperCMPDesigns returns the three Fig 1 designs (16 BCE).
func PaperCMPDesigns() []CMPDesign { return amdahl.PaperDesigns() }

// Activity carries the simulation counts the energy model integrates.
type Activity = power.Activity

// PowerReport couples the Fig 12 metrics (cycles, area, energy) for
// one design point.
type PowerReport = power.Report

// AreaBreakdown itemises worker-cluster area in mm^2.
type AreaBreakdown = power.AreaBreakdown

// EnergyBreakdown itemises worker-cluster energy in joules.
type EnergyBreakdown = power.EnergyBreakdown

// ArbitrationPolicy selects the shared I-bus arbitration discipline.
type ArbitrationPolicy = interconnect.Policy

// Arbitration policies (the paper uses round-robin; the others support
// the §VII fetch-policy ablation).
const (
	// RoundRobin rotates priority past the last grantee.
	RoundRobin = interconnect.RoundRobin
	// FixedPriority always serves the lowest-index core first.
	FixedPriority = interconnect.FixedPriority
	// OldestFirst is global FCFS by submit cycle.
	OldestFirst = interconnect.OldestFirst
)
