// Persistentsweep: run a design-space campaign through the on-disk run
// store, the way a cluster would split the paper's evaluation across
// nodes. The example executes the same small campaign three ways —
// shard 1/2, shard 2/2, then a warm full pass — against one store
// directory, streaming results as they complete and proving with the
// engine's own counters that the warm pass simulates nothing.
//
// Run with:
//
//	go run ./examples/persistentsweep [-store DIR] [-n 40000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"sharedicache"
)

func main() {
	dir := flag.String("store", "", "run-store directory (default: a temp dir)")
	n := flag.Uint64("n", 40_000, "master instruction budget per design point")
	flag.Parse()

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "runstore-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}

	opts := sharedicache.DefaultExperimentOptions()
	opts.Instructions = *n
	opts.Benchmarks = []string{"UA", "FT", "LULESH"}

	// plan declares the campaign: per benchmark the private baseline
	// plus the shared organisation at each sharing degree.
	plan := func(r *sharedicache.Runner) *sharedicache.CampaignPlan {
		p := r.Plan()
		for _, b := range opts.Benchmarks {
			p.Add(b, sharedicache.DefaultConfig())
			for _, cpc := range []int{2, 4, 8} {
				cfg := sharedicache.SharedConfig()
				cfg.CPC = cpc
				p.Add(b, cfg)
			}
		}
		return p
	}

	// Phase 1: two shards, as two processes on two hosts would run
	// them, sharing the store directory.
	for i := 1; i <= 2; i++ {
		runner := newRunner(opts, *dir)
		sh := sharedicache.Shard{Index: i, Count: 2}
		sub, err := plan(runner).Shard(sh)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sub.RunAll(context.Background()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %s: %d points, %d simulated\n", sh, sub.Len(), runner.Simulations())
	}

	// Phase 2: the merged pass streams the whole campaign from the warm
	// store — watch the rows arrive with zero simulations behind them.
	runner := newRunner(opts, *dir)
	ch, err := plan(runner).RunAllStream(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbenchmark    org            cpc      cycles")
	for pr := range ch {
		if pr.Err != nil {
			log.Fatal(pr.Err)
		}
		fmt.Printf("%-12s %-14s %3d  %10d\n", pr.Point.Bench,
			pr.Point.Cfg.Organization, pr.Point.Cfg.CPC, pr.Result.Cycles)
	}
	st := runner.Store().Stats()
	fmt.Printf("\nwarm pass: %d simulated, %d store hits — the shards did all the work\n",
		runner.Simulations(), st.Hits)
}

func newRunner(opts sharedicache.ExperimentOptions, dir string) *sharedicache.Runner {
	r, err := sharedicache.NewRunner(opts)
	if err != nil {
		log.Fatal(err)
	}
	store, err := sharedicache.OpenRunStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	r.SetStore(store)
	return r
}
