// Scalability: how many lean cores can share one I-cache? The paper
// stops at eight workers and notes (§VI-E, "Group 3") that a ninth
// sharer already exposes the single bus. This example sweeps the
// sharing degree from 2 to 16 workers with 1, 2 and 4 buses and prints
// the slowdown frontier plus the largest worker count each
// interconnect sustains within 2%.
//
// Run with:
//
//	go run ./examples/scalability [-n 60000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"sharedicache"
)

func main() {
	n := flag.Uint64("n", 60_000, "master instruction budget per design point")
	flag.Parse()

	opts := sharedicache.DefaultExperimentOptions()
	opts.Instructions = *n
	opts.Benchmarks = []string{"UA", "FT", "LULESH"}
	runner, err := sharedicache.NewRunner(opts)
	if err != nil {
		log.Fatal(err)
	}

	e, err := sharedicache.ExperimentByID("ext-scale")
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run(context.Background(), runner)
	if err != nil {
		log.Fatal(err)
	}
	tbl := res.Table()
	fmt.Println(tbl.String())
	fmt.Println(tbl.Bars(0, 48, 1.0)) // single-bus column as a bar chart

	fmt.Println("Reading the frontier: the paper's octa-core cluster with a")
	fmt.Println("double bus is the knee — beyond it, either quadruple the")
	fmt.Println("interconnect or split the cluster into two sharing groups")
	fmt.Println("(cpc=8), which is exactly the Xeon-Phi-style organisation the")
	fmt.Println("paper suggests in §VI-D.")
}
