// Distributed: run one design-space campaign across a coordinator and
// two workers, all in this process but talking real HTTP over a
// loopback listener — exactly the topology a cluster would run with
// the coordinator on one node and `sweep -remote URL -worker` on the
// others, no shared filesystem required.
//
// The coordinator owns the plan and the run store; the workers fetch
// the campaign options, lease batches of design points under TTL
// leases, simulate them, and publish results back through the store
// plane. The main goroutine plays the role of `campaignd`'s merge
// loop: it streams results in plan order while the workers are still
// simulating.
//
// Run with:
//
//	go run ./examples/distributed [-n 40000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"

	"sharedicache"
)

func main() {
	n := flag.Uint64("n", 40_000, "master instruction budget per design point")
	flag.Parse()

	dir, err := os.MkdirTemp("", "campaignd-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := sharedicache.DefaultExperimentOptions()
	opts.Instructions = *n
	opts.Benchmarks = []string{"UA", "FT", "LULESH"}

	// The coordinator's runner defines the campaign; workers will fetch
	// these options over HTTP so every store key agrees.
	runner, err := sharedicache.NewRunner(opts)
	if err != nil {
		log.Fatal(err)
	}
	store, err := sharedicache.OpenRunStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	runner.SetStore(store)

	// The plan: per benchmark the private baseline plus the shared
	// organisation at each sharing degree.
	plan := runner.Plan()
	for _, b := range opts.Benchmarks {
		plan.Add(b, sharedicache.DefaultConfig())
		for _, cpc := range []int{2, 4, 8} {
			cfg := sharedicache.SharedConfig()
			cfg.CPC = cpc
			plan.Add(b, cfg)
		}
	}

	srv, err := sharedicache.NewCampaignServer(sharedicache.CampaignServerConfig{
		Runner: runner, Store: store, Points: plan.Points(), Batch: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("coordinator: %d points on %s\n\n", plan.Len(), url)

	// Two workers race for leases, the way two `sweep -remote -worker`
	// processes on two machines would.
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := sharedicache.CampaignWorker{URL: url, ID: fmt.Sprintf("worker-%d", i), Parallelism: 2}
			rep, err := w.Run(ctx)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("worker-%d: %d points over %d leases, %d simulated\n",
				i, rep.Points, rep.Leases, rep.Simulations)
		}(i)
	}

	// Merge: results stream in plan order while the workers simulate.
	fmt.Println("benchmark    org            cpc      cycles")
	for pr := range srv.Stream(ctx) {
		if pr.Err != nil {
			log.Fatal(pr.Err)
		}
		fmt.Printf("%-12s %-14s %3d  %10d\n", pr.Point.Bench,
			pr.Point.Cfg.Organization, pr.Point.Cfg.CPC, pr.Result.Cycles)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("\ncampaign complete: %d points, %d store writes, %d leases expired — zero duplicate work\n",
		st.Dispatch.Points, st.Store.Writes, st.Dispatch.ExpiredLeases)
}
