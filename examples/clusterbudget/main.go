// Clusterbudget: the §VI-D thought experiment — spend the area saved
// by sharing the I-cache on an extra lean core, and estimate the
// throughput gained for the same silicon budget.
//
// The example sizes three worker clusters with the McPAT/CACTI-style
// model, then uses the Hill-Marty model to translate core counts into
// parallel-throughput speedup at a given serial fraction:
//
//  1. baseline:     8 workers, private 32 KB I-caches
//  2. shared:       8 workers, one 16 KB I-cache, double bus
//  3. shared+core:  9 workers, same shared front-end, bought with the
//     area saving
//
// Run with:
//
//	go run ./examples/clusterbudget
package main

import (
	"fmt"
	"log"

	"sharedicache"
)

func main() {
	tech := sharedicache.Default45nm()
	cache32 := sharedicache.DefaultConfig().ICache
	cache16 := cache32
	cache16.SizeBytes = 16 << 10
	cache16.Banks = 2

	private8 := sharedicache.Cluster{
		Workers: 8, Caches: 8, Cache: cache32, LineBuffersPerCore: 4,
	}
	shared8 := sharedicache.Cluster{
		Workers: 8, Caches: 1, Cache: cache16,
		BusesPerCache: 2, BusWidthBytes: 32,
		LineBuffersPerCore: 4, SharedCacheOverhead: 0.25,
	}
	shared9 := shared8
	shared9.Workers = 9

	a8p := area(tech, private8)
	a8s := area(tech, shared8)
	a9s := area(tech, shared9)

	fmt.Println("worker-cluster area budgets (paper §VI-D):")
	fmt.Printf("  8 workers, private 32KB I-caches: %7.3f mm^2\n", a8p)
	fmt.Printf("  8 workers, shared 16KB + 2 buses: %7.3f mm^2 (%.1f%% saved)\n",
		a8s, 100*(1-a8s/a8p))
	fmt.Printf("  9 workers, shared 16KB + 2 buses: %7.3f mm^2\n", a9s)
	if a9s <= a8p {
		fmt.Printf("  -> the saving pays for a 9th core with %.3f mm^2 to spare\n\n", a8p-a9s)
	} else {
		fmt.Printf("  -> a 9th core overshoots the baseline budget by %.3f mm^2\n\n", a9s-a8p)
	}

	// Translate the extra core into end-to-end speedup with the Fig 1
	// model: an ACMP with one 4-BCE master plus N worker BCEs.
	fmt.Println("Hill-Marty speedup for the same chip budget (master = 4 BCE):")
	fmt.Printf("  %-10s %12s %12s %10s\n", "serial", "8 workers", "9 workers", "gain")
	for _, f := range []float64{0.0, 0.01, 0.05, 0.10, 0.20} {
		acmp8 := sharedicache.CMPDesign{Name: "8w", BudgetBCE: 12, BigBCE: 4, BigCores: 1}
		acmp9 := sharedicache.CMPDesign{Name: "9w", BudgetBCE: 13, BigBCE: 4, BigCores: 1}
		s8, s9 := acmp8.Speedup(f), acmp9.Speedup(f)
		fmt.Printf("  %9.0f%% %12.3f %12.3f %9.2f%%\n", 100*f, s8, s9, 100*(s9/s8-1))
	}
	fmt.Println("\n(the gain shrinks with the serial fraction: extra lean cores")
	fmt.Println(" only help parallel code — the ACMP argument of Fig 1)")
}

func area(tech sharedicache.Tech, c sharedicache.Cluster) float64 {
	a, err := tech.ClusterArea(c)
	if err != nil {
		log.Fatal(err)
	}
	return a.TotalMM2()
}
