// Customworkload: define a benchmark profile of your own — here a
// branchy, small-kernel irregular code that is hostile to I-cache
// sharing — and check whether the paper's preferred design still holds
// performance for it. This is what a user with a new workload class
// would do before adopting the shared front-end.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"sharedicache"
)

func main() {
	// An irregular graph-analytics-like kernel: short basic blocks,
	// noisy branches, a large cold-streamed region and little code
	// locality. Contrast with the regular NPB-style profiles the paper
	// characterises.
	hostile := sharedicache.Profile{
		Name: "graphy", Suite: "CUSTOM",
		SerialBB: 36, ParallelBB: 48,
		SerialHotBody: 256, ParallelHotBody: 320,
		SerialFootprint: 8192, ParallelFootprint: 14336,
		PrivateFootprint: 2048, ColdFootprint: 393216,
		SerialColdFrac: 0.3, ParallelColdFrac: 0.01, PrivateFrac: 0.03,
		SerialFrac:        0.05,
		SerialBranchNoise: 0.06, ParallelBranchNoise: 0.03,
		Trips:           10,
		MasterSerialIPC: 1400, MasterParallelIPC: 1800, WorkerIPC: 600,
		Phases: 4, Skew: true, CriticalSections: 2,
	}

	// A friendly dense-kernel profile for contrast.
	friendly := sharedicache.Profile{
		Name: "dense", Suite: "CUSTOM",
		SerialBB: 64, ParallelBB: 256,
		SerialHotBody: 2048, ParallelHotBody: 4096,
		SerialFootprint: 10240, ParallelFootprint: 10240,
		PrivateFootprint: 256, ColdFootprint: 262144,
		SerialColdFrac: 0.1, PrivateFrac: 0.004,
		SerialFrac:        0.01,
		SerialBranchNoise: 0.02, ParallelBranchNoise: 0.003,
		Trips:           24,
		MasterSerialIPC: 1900, MasterParallelIPC: 2400, WorkerIPC: 660,
		Phases: 4,
	}

	fmt.Printf("%-8s %-24s %10s %12s %12s\n",
		"profile", "design", "cycles", "vs baseline", "worker MPKI")
	for _, p := range []sharedicache.Profile{friendly, hostile} {
		w, err := sharedicache.NewWorkload(p, sharedicache.WorkloadConfig{
			Workers: 8, MasterInstructions: 150_000, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		base := simulate(w, sharedicache.DefaultConfig())
		fmt.Printf("%-8s %-24s %10d %12s %12.4f\n",
			p.Name, "private 32KB", base.Cycles, "1.000", base.WorkerMPKI())

		for _, d := range []struct {
			name  string
			buses int
			kb    int
		}{
			{"shared 16KB single bus", 1, 16},
			{"shared 16KB double bus", 2, 16},
			{"shared 32KB double bus", 2, 32},
		} {
			cfg := sharedicache.SharedConfig()
			cfg.Buses = d.buses
			cfg.ICache.SizeBytes = d.kb << 10
			res := simulate(w, cfg)
			fmt.Printf("%-8s %-24s %10d %12.3f %12.4f\n",
				p.Name, d.name, res.Cycles,
				float64(res.Cycles)/float64(base.Cycles), res.WorkerMPKI())
		}
	}
	fmt.Println("\nIf the hostile profile degrades even with a double bus, keep")
	fmt.Println("private I-caches for that workload class (the paper's design")
	fmt.Println("targets SPMD HPC code, not irregular workloads).")
}

func simulate(w *sharedicache.Workload, cfg sharedicache.Config) *sharedicache.Result {
	sim, err := sharedicache.NewSimulator(cfg, w.Sources())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
