// Designspace: sweep the shared-I-cache design space for one workload
// — sharing degree (cpc), cache size, line buffers and bus count — and
// print the (time, energy, area) frontier so an architect can pick a
// design point. This is the §VI exploration as a library user would
// rerun it for their own workload.
//
// Run with:
//
//	go run ./examples/designspace [-bench UA] [-n 200000]
package main

import (
	"flag"
	"fmt"
	"log"

	"sharedicache"
)

func main() {
	bench := flag.String("bench", "UA", "benchmark to explore")
	n := flag.Uint64("n", 200_000, "master instruction budget")
	flag.Parse()

	profile, ok := sharedicache.ProfileByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	workload, err := sharedicache.NewWorkload(profile, sharedicache.WorkloadConfig{
		Workers: 8, MasterInstructions: *n, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tech := sharedicache.Default45nm()

	type point struct {
		name               string
		cfg                sharedicache.Config
		time, energy, area float64
		mpki               float64
	}

	base := simulate(workload, sharedicache.DefaultConfig())
	baseRep := evaluate(tech, sharedicache.DefaultConfig(), base)

	var frontier []point
	for _, cpc := range []int{2, 4, 8} {
		for _, sizeKB := range []int{16, 32} {
			for _, lb := range []int{2, 4, 8} {
				for _, buses := range []int{1, 2} {
					cfg := sharedicache.DefaultConfig()
					cfg.Organization = sharedicache.OrgWorkerShared
					cfg.CPC = cpc
					cfg.ICache.SizeBytes = sizeKB << 10
					cfg.LineBuffers = lb
					cfg.Buses = buses
					res := simulate(workload, cfg)
					rep := evaluate(tech, cfg, res)
					tr, er, ar := rep.Relative(baseRep)
					frontier = append(frontier, point{
						name: fmt.Sprintf("cpc=%d %2dKB %dLB %dbus", cpc, sizeKB, lb, buses),
						cfg:  cfg, time: tr, energy: er, area: ar,
						mpki: res.WorkerMPKI(),
					})
				}
			}
		}
	}

	fmt.Printf("design space for %s (normalized to private 32KB baseline)\n\n", *bench)
	fmt.Printf("%-22s %7s %7s %7s %9s\n", "design", "time", "energy", "area", "MPKI")
	fmt.Printf("%-22s %7.3f %7.3f %7.3f %9.4f\n", "baseline", 1.0, 1.0, 1.0, base.WorkerMPKI())
	var best *point
	for i := range frontier {
		p := &frontier[i]
		fmt.Printf("%-22s %7.3f %7.3f %7.3f %9.4f\n", p.name, p.time, p.energy, p.area, p.mpki)
		// The paper's criterion: no performance loss (within 1%), then
		// minimize energy.
		if p.time <= 1.01 && (best == nil || p.energy < best.energy) {
			best = p
		}
	}
	if best != nil {
		fmt.Printf("\nbest no-performance-loss design: %s (energy %.3f, area %.3f)\n",
			best.name, best.energy, best.area)
	} else {
		fmt.Println("\nno shared design holds performance within 1% for this workload")
	}
}

func simulate(w *sharedicache.Workload, cfg sharedicache.Config) *sharedicache.Result {
	sim, err := sharedicache.NewSimulator(cfg, w.Sources())
	if err != nil {
		log.Fatal(err)
	}
	// Explore steady state, as the paper does: prewarm every cache with
	// the workload's hot lines.
	ic := make([][]uint64, cfg.Workers+1)
	l2 := make([][]uint64, cfg.Workers+1)
	for i := 0; i <= cfg.Workers; i++ {
		ic[i] = w.WarmLines(i, cfg.ICache.LineBytes)
		l2[i] = w.L2WarmLines(i, cfg.Mem.L2.LineBytes)
	}
	sim.Prewarm(ic, l2)
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func evaluate(tech sharedicache.Tech, cfg sharedicache.Config, res *sharedicache.Result) sharedicache.PowerReport {
	cl := sharedicache.Cluster{
		Workers:            cfg.Workers,
		Cache:              cfg.ICache,
		LineBuffersPerCore: cfg.LineBuffers,
	}
	if cfg.Organization == sharedicache.OrgWorkerShared {
		cl.Caches = cfg.Workers / cfg.CPC
		cl.BusesPerCache = cfg.Buses
		cl.BusWidthBytes = cfg.BusWidthBytes
		cl.SharedCacheOverhead = 0.25
		cl.Cache.Banks = cfg.Buses
	} else {
		cl.Caches = cfg.Workers
	}
	var lineNeeds, cacheFetches uint64
	for _, c := range res.Cores[1:] {
		lineNeeds += c.FE.LineNeeds
		cacheFetches += c.FE.CacheFetches
	}
	rep, err := tech.Evaluate(cl, sharedicache.Activity{
		Cycles:          res.Cycles,
		Instructions:    res.WorkerInstructions(),
		CacheAccesses:   res.WorkerICache.Accesses,
		BusTransactions: res.Bus.Granted,
		LineBufferHits:  lineNeeds - cacheFetches,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
