// Quickstart: simulate one HPC benchmark on the baseline ACMP
// (private I-caches) and on the paper's shared-I-cache design, and
// compare execution time, worker MPKI and bus behaviour.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sharedicache"
)

func main() {
	// Pick a benchmark profile: FT from the NAS Parallel Benchmarks.
	profile, ok := sharedicache.ProfileByName("FT")
	if !ok {
		log.Fatal("no FT profile")
	}

	// Synthesise the workload: one master thread plus 8 workers.
	workload, err := sharedicache.NewWorkload(profile, sharedicache.WorkloadConfig{
		Workers:            8,
		MasterInstructions: 200_000,
		Seed:               1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: every core has a private 32 KB I-cache (Fig 5a).
	baseline := run(workload, sharedicache.DefaultConfig())

	// The paper's design: one 16 KB I-cache shared by all 8 workers
	// behind a double bus with 4 line buffers per core (Fig 5b).
	shared := run(workload, sharedicache.SharedConfig())

	fmt.Println("config              cycles    worker MPKI   bus grants   merged fills")
	fmt.Printf("private 32KB     %9d      %9.4f    %9d   %12d\n",
		baseline.Cycles, baseline.WorkerMPKI(), baseline.Bus.Granted, baseline.MergedFills)
	fmt.Printf("shared 16KB x2   %9d      %9.4f    %9d   %12d\n",
		shared.Cycles, shared.WorkerMPKI(), shared.Bus.Granted, shared.MergedFills)
	fmt.Printf("\nnormalized execution time: %.3f\n",
		float64(shared.Cycles)/float64(baseline.Cycles))
	fmt.Printf("worker miss reduction:     %.1f%%\n",
		100*(1-float64(shared.WorkerICache.Misses)/float64(baseline.WorkerICache.Misses)))
}

// run simulates the workload on one configuration. Each simulator is
// single-use, so fresh trace sources are drawn from the workload.
func run(w *sharedicache.Workload, cfg sharedicache.Config) *sharedicache.Result {
	sim, err := sharedicache.NewSimulator(cfg, w.Sources())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
