// Autorefine: the two-phase triage-then-refine campaign end to end,
// against a temporary run store. Pass one calibrates the analytical
// backend on a small golden slice of the space (running both backends)
// and persists the fit; the full space then runs analytically with the
// corrections applied, the top-K points re-run on the cycle-level
// detailed backend, and the merged CSV streams to stdout with phase
// and backend columns. Pass two repeats the campaign against the warm
// store and proves — with the engine's own counters — that the fit is
// reused and nothing recalibrates or re-simulates.
//
// This is the library face of `sweep -refine -refine-top K`; see
// docs/REFINE.md for the full workflow.
//
// Run with:
//
//	go run ./examples/autorefine [-store DIR] [-n 40000] [-top 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"sharedicache"
)

func main() {
	dir := flag.String("store", "", "run-store directory (default: a temp dir)")
	n := flag.Uint64("n", 40_000, "master instruction budget per design point")
	top := flag.Int("top", 4, "frontier size: the K best points by time_ratio")
	flag.Parse()

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "runstore-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	ctx := context.Background()

	space := sharedicache.DesignSpace{
		Benches:     []string{"UA", "FT", "LULESH"},
		CPCs:        []int{2, 4, 8},
		SizesKB:     []int{16, 32},
		LineBuffers: []int{4},
		Buses:       []int{1, 2},
	}

	for pass := 1; pass <= 2; pass++ {
		opts := sharedicache.DefaultExperimentOptions()
		opts.Instructions = *n
		opts.Benchmarks = space.Benches
		runner, err := sharedicache.NewRunner(opts)
		if err != nil {
			log.Fatal(err)
		}
		store, err := sharedicache.OpenRunStore(*dir)
		if err != nil {
			log.Fatal(err)
		}
		runner.SetStore(store)

		fmt.Fprintf(os.Stderr, "== pass %d\n", pass)
		res, err := sharedicache.PrepareRefine(ctx, sharedicache.RefineConfig{
			Space:    space,
			Runner:   runner,
			Store:    store,
			Selector: sharedicache.TopKSelector{K: *top},
			Log:      os.Stderr,
		})
		if err != nil {
			log.Fatal(err)
		}
		if pass == 1 {
			fmt.Fprintf(os.Stderr, "calibration: time_ratio rmse %.4f, energy_ratio rmse %.4f over %d golden rows\n",
				res.Calibration.TimeRatio.RMSE, res.Calibration.EnergyRatio.RMSE, res.GoldenRows)
		} else if !res.CalibrationReused {
			log.Fatal("pass 2 should have reused the persisted calibration fit")
		}

		// Execute the mixed plan. The analytical triage already ran
		// inside PrepareRefine, so only the frontier's detailed points
		// (and their baselines) simulate here.
		csvw := sharedicache.NewSweepCSV(os.Stdout, opts.Workers)
		csvw.IncludePhaseColumn()
		csvw.IncludeBackendColumn()
		csvw.SetAdjust(res.Adjust)
		if pass == 1 {
			if err := csvw.Header(); err != nil {
				log.Fatal(err)
			}
			ch, err := res.Plan.RunAllStream(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if err := csvw.EmitStream(ch, res.Rows, res.Plan.Len()); err != nil {
				log.Fatal(err)
			}
			if err := csvw.Flush(); err != nil {
				log.Fatal(err)
			}
		} else {
			// The warm pass only proves the counters; the CSV would be
			// byte-identical to pass 1.
			if _, err := res.Plan.RunAll(ctx); err != nil {
				log.Fatal(err)
			}
		}
		by := runner.BackendRuns()
		fmt.Fprintf(os.Stderr, "pass %d: %d detailed simulations (calibration %d), %d analytical, frontier %d of %d rows\n",
			pass, by["detailed"], res.GoldenDetailedSims, by["analytical"], res.FrontierRows, res.TriageRows)
		if pass == 2 && by["detailed"]+by["analytical"] != 0 {
			log.Fatal("warm pass re-simulated; the store or fit reuse is broken")
		}
	}
	fmt.Fprintln(os.Stderr, "warm pass: calibration reused, zero simulations — the fit and every result came from the store")
}
